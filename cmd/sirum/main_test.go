package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBuiltinDataset(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-dataset", "flights", "-k", "3", "-sample", "0"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Destination=London", "Day=Fri", "KL divergence", "information gain"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSVInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.csv")
	csv := "id,day,dest,delay\n1,Fri,LHR,20\n2,Fri,LHR,22\n3,Mon,JFK,5\n4,Mon,JFK,6\n5,Tue,JFK,4\n6,Tue,LHR,21\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run([]string{"-input", path, "-measure", "delay", "-ignore", "id", "-k", "2", "-sample", "0"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dest=LHR") {
		t.Errorf("expected the LHR rule:\n%s", sb.String())
	}
}

func TestRunArgumentErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{},                                   // neither input nor dataset
		{"-input", "x.csv"},                  // missing -measure
		{"-input", "x.csv", "-dataset", "y"}, // both
		{"-dataset", "unknown"},              // bad dataset
		{"-input", "/does/not/exist.csv", "-measure", "m"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
