// Command sirumd serves informative rule mining over HTTP: a registry of
// named prepared sessions (create from CSV or the built-in synthetic
// generators), each answering concurrent mine/explore queries and streaming
// appends, with admission control bounding in-flight work, an epoch-keyed
// result cache making repeat queries near-free, and optional snapshot
// persistence so a restarted daemon comes back serving.
//
// Usage:
//
//	sirumd [-addr :8080] [-inflight 16] [-cache 256] [-snapshot dir]
//	       [-nofsync] [-shard-id s0] [-advertise http://host:8080]
//	sirumd -selftest [-dataset income] [-rows 5000] [-queries 64]
//	       [-concurrency 8] [-k 3] [-sample 16]
//
// -shard-id and -advertise put the daemon in shard mode under a sirumr
// router: the id labels the shard in health checks and metrics, and the
// advertise address tells the cluster where to reach this daemon. A shard
// run with -snapshot can be killed and restarted in place; the router
// marks it down meanwhile and its sessions resume at their prior epochs.
//
// Endpoints:
//
//	POST   /v1/datasets             {"id":"d1","generator":{"name":"income","rows":5000}}
//	GET    /v1/datasets             list sessions
//	GET    /v1/datasets/{id}        session info + lifetime stats
//	DELETE /v1/datasets/{id}        close a session
//	POST   /v1/datasets/{id}/mine   {"k":5,"sample_size":16}
//	POST   /v1/datasets/{id}/explore {"k":4,"group_bys":2}
//	POST   /v1/datasets/{id}/append {"rows":[{"dims":[...],"measure":1.5}]}
//	GET    /v1/datasets/{id}/export migration document: manifest + data + journal
//	POST   /v1/datasets/import      rebuild a session from an export document
//	GET    /v1/metrics              Prometheus-style text metrics
//	GET    /v1/healthz
//
// -selftest starts the daemon on a loopback port, fires a storm of
// concurrent mixed mine/explore queries through the full HTTP path (cold
// misses and cache hits both, reporting the hit rate alongside p50/p95),
// then kills the daemon and restarts it from its snapshot directory,
// verifying the restored sessions answer the pre-restart baselines — the
// serving path's measurable correctness check.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sirum/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sirumd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sirumd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	inflight := fs.Int("inflight", 0, "max concurrently executing queries (0 = 2x cores); excess requests queue")
	cache := fs.Int("cache", 0, "result cache entries (0 = 256 default, negative disables)")
	snapshot := fs.String("snapshot", "", "session persistence directory: journal the registry and restore it on boot (empty disables)")
	nofsync := fs.Bool("nofsync", false, "skip fsync on snapshot writes: faster, but a crash can lose acknowledged appends (benchmarks and tests only)")
	shardID := fs.String("shard-id", "", "logical shard name reported to routers via /v1/healthz and /v1/metrics (empty = standalone)")
	advertise := fs.String("advertise", "", "address other nodes reach this daemon at, if it differs from -addr")
	selftest := fs.Bool("selftest", false, "start on a loopback port, run the load generator and a restart-from-snapshot pass, and exit")
	dataset := fs.String("dataset", "income", "selftest: built-in dataset backing the load session")
	rows := fs.Int("rows", 5000, "selftest: dataset rows")
	queries := fs.Int("queries", 64, "selftest: total queries to fire")
	concurrency := fs.Int("concurrency", 8, "selftest: concurrent client workers")
	k := fs.Int("k", 3, "selftest: rules per query")
	sample := fs.Int("sample", 16, "selftest: |s| for candidate pruning")
	if err := fs.Parse(args); err != nil {
		return err
	}

	conf := server.Config{
		MaxInFlight: *inflight, CacheEntries: *cache, SnapshotDir: *snapshot,
		ShardID: *shardID, Advertise: *advertise, NoFsync: *nofsync,
	}
	if *selftest {
		if conf.SnapshotDir == "" {
			dir, err := os.MkdirTemp("", "sirumd-selftest-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			conf.SnapshotDir = dir
		}
		return runSelftest(out, conf, server.LoadConfig{
			Dataset:     *dataset,
			Rows:        *rows,
			Queries:     *queries,
			Concurrency: *concurrency,
			K:           *k,
			SampleSize:  *sample,
		})
	}

	srv := server.New(conf)
	if conf.SnapshotDir != "" {
		n, err := srv.Restore()
		if err != nil {
			srv.Close()
			return fmt.Errorf("restoring snapshot: %w", err)
		}
		fmt.Fprintf(out, "sirumd restored %d sessions from %s\n", n, conf.SnapshotDir)
	}
	return serve(out, srv, *addr)
}

// serve runs the daemon until SIGINT/SIGTERM, then drains: the HTTP server
// stops accepting and waits for active requests, and the app server waits
// for admitted queries before closing any prepared session.
func serve(out io.Writer, srv *server.Server, addr string) error {
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(out, "sirumd listening on %s\n", addr)

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "sirumd draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := httpSrv.Shutdown(shutdownCtx)
	// Even when the drain timed out, still run the app-level Close: it waits
	// for the straggler queries (a running mine cannot be cancelled
	// mid-flight) and then tears sessions and their spill directories down.
	if cerr := srv.Close(); err == nil {
		err = cerr
	}
	return err
}

// loopback serves srv on an ephemeral loopback port, returning the base
// URL and a teardown that closes the HTTP listener and the app server.
func loopback(srv *server.Server) (base string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		httpSrv.Close()
		srv.Close()
	}, nil
}

// runSelftest drives the whole serving path in-process: the load storm,
// then a kill-and-restart pass against the snapshot directory.
func runSelftest(out io.Writer, conf server.Config, cfg server.LoadConfig) error {
	srv := server.New(conf)
	base, shutdown, err := loopback(srv)
	if err != nil {
		srv.Close()
		return err
	}
	cfg.BaseURL = base
	fmt.Fprintf(out, "selftest: %d queries x %d workers on %s (%d rows)\n",
		cfg.Queries, cfg.Concurrency, cfg.Dataset, cfg.Rows)
	rep, err := server.RunLoad(cfg)
	if err != nil {
		shutdown()
		return err
	}
	fmt.Fprintln(out, rep)
	if rep.Errors > 0 {
		shutdown()
		return fmt.Errorf("selftest: %d of %d queries failed: %s", rep.Errors, rep.Queries, rep.FirstError)
	}

	if err := restartCheck(out, conf, cfg, srv, base, shutdown); err != nil {
		return fmt.Errorf("snapshot restart: %w", err)
	}
	return nil
}

// restartCheck proves persistence end to end: register a generator session
// and a CSV session (with one appended batch) on the live daemon, record
// baseline mines, kill the daemon, restore a fresh one from the snapshot
// directory, and require the restored registry to serve the same sessions
// with baseline-identical answers.
func restartCheck(out io.Writer, conf server.Config, cfg server.LoadConfig, srv *server.Server, base string, shutdown func()) error {
	// cfg is the raw LoadConfig (RunLoad defaults only its own copy);
	// never run the check with an unbounded client, or a wedged daemon
	// hangs the selftest instead of failing it.
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	c := &server.Client{BaseURL: base, HTTP: &http.Client{Timeout: cfg.Timeout}}
	mineReq := server.MineRequest{K: cfg.K, SampleSize: cfg.SampleSize, Seed: 1}

	rows := cfg.Rows / 4
	if rows < 200 {
		rows = 200
	}
	if err := c.Do("POST", "/v1/datasets", server.CreateRequest{
		ID:        "persist-gen",
		Generator: &server.GeneratorSpec{Name: cfg.Dataset, Rows: rows, Seed: 1},
		Prepare:   server.PrepareSpec{SampleSize: cfg.SampleSize, Seed: 1},
	}, nil); err != nil {
		shutdown()
		return err
	}
	var sb strings.Builder
	sb.WriteString("Day,City,Delay\n")
	for i := 0; i < 24; i++ {
		fmt.Fprintf(&sb, "%s,%s,%d\n", []string{"Mon", "Tue", "Wed"}[i%3], []string{"NY", "LA"}[i%2], 10+i%7)
	}
	if err := c.Do("POST", "/v1/datasets", server.CreateRequest{
		ID: "persist-csv", CSV: sb.String(), Measure: "Delay",
	}, nil); err != nil {
		shutdown()
		return err
	}
	// One appended batch, so the restart also proves journal replay.
	if err := c.Do("POST", "/v1/datasets/persist-csv/append", server.AppendRequest{
		Rows: []server.RowJSON{
			{Dims: []string{"Thu", "NY"}, Measure: 55},
			{Dims: []string{"Thu", "LA"}, Measure: 60},
		},
		MineRequest: server.MineRequest{K: 2},
	}, nil); err != nil {
		shutdown()
		return err
	}
	baselines := map[string]server.MineResponse{}
	for _, id := range []string{"persist-gen", "persist-csv"} {
		var resp server.MineResponse
		if err := c.Do("POST", "/v1/datasets/"+id+"/mine", mineReq, &resp); err != nil {
			shutdown()
			return err
		}
		baselines[id] = resp
	}

	shutdown() // kill the daemon; the snapshot directory is all that survives

	restored := server.New(conf)
	n, err := restored.Restore()
	if err != nil {
		restored.Close()
		return err
	}
	base2, shutdown2, err := loopback(restored)
	if err != nil {
		restored.Close()
		return err
	}
	defer shutdown2()
	c2 := &server.Client{BaseURL: base2, HTTP: &http.Client{Timeout: cfg.Timeout}}

	var list server.ListResponse
	if err := c2.Do("GET", "/v1/datasets", nil, &list); err != nil {
		return err
	}
	if len(list.Sessions) != n {
		return fmt.Errorf("restored %d sessions but list shows %d", n, len(list.Sessions))
	}
	for id, want := range baselines {
		var got server.MineResponse
		if err := c2.Do("POST", "/v1/datasets/"+id+"/mine", mineReq, &got); err != nil {
			return err
		}
		if len(got.Rules) != len(want.Rules) {
			return fmt.Errorf("session %q: %d rules after restart, %d before", id, len(got.Rules), len(want.Rules))
		}
		for i := range got.Rules {
			if got.Rules[i].Display != want.Rules[i].Display || got.Rules[i].Count != want.Rules[i].Count {
				return fmt.Errorf("session %q rule %d: %s (%d) after restart vs %s (%d) before",
					id, i, got.Rules[i].Display, got.Rules[i].Count, want.Rules[i].Display, want.Rules[i].Count)
			}
		}
	}
	fmt.Fprintf(out, "snapshot restart: %d sessions restored, %d baselines verified\n", n, len(baselines))
	return nil
}
