// Command sirumd serves informative rule mining over HTTP: a registry of
// named prepared sessions (create from CSV or the built-in synthetic
// generators), each answering concurrent mine/explore queries and streaming
// appends, with admission control bounding in-flight work.
//
// Usage:
//
//	sirumd [-addr :8080] [-inflight 16]
//	sirumd -selftest [-dataset income] [-rows 5000] [-queries 64]
//	       [-concurrency 8] [-k 3] [-sample 16]
//
// Endpoints:
//
//	POST   /v1/datasets             {"id":"d1","generator":{"name":"income","rows":5000}}
//	GET    /v1/datasets             list sessions
//	GET    /v1/datasets/{id}        session info + lifetime stats
//	DELETE /v1/datasets/{id}        close a session
//	POST   /v1/datasets/{id}/mine   {"k":5,"sample_size":16}
//	POST   /v1/datasets/{id}/explore {"k":4,"group_bys":2}
//	POST   /v1/datasets/{id}/append {"rows":[{"dims":[...],"measure":1.5}]}
//	GET    /v1/healthz
//
// -selftest starts the daemon on a loopback port, fires a storm of
// concurrent mixed mine/explore queries through the full HTTP path, checks
// every mine against a baseline, and reports throughput with p50/p95
// latency — the serving path's measurable baseline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sirum/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sirumd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sirumd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	inflight := fs.Int("inflight", 0, "max concurrently executing queries (0 = 2x cores); excess requests queue")
	selftest := fs.Bool("selftest", false, "start on a loopback port, run the load generator, and exit")
	dataset := fs.String("dataset", "income", "selftest: built-in dataset backing the load session")
	rows := fs.Int("rows", 5000, "selftest: dataset rows")
	queries := fs.Int("queries", 64, "selftest: total queries to fire")
	concurrency := fs.Int("concurrency", 8, "selftest: concurrent client workers")
	k := fs.Int("k", 3, "selftest: rules per query")
	sample := fs.Int("sample", 16, "selftest: |s| for candidate pruning")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := server.New(server.Config{MaxInFlight: *inflight})
	if *selftest {
		return runSelftest(out, srv, server.LoadConfig{
			Dataset:     *dataset,
			Rows:        *rows,
			Queries:     *queries,
			Concurrency: *concurrency,
			K:           *k,
			SampleSize:  *sample,
		})
	}
	return serve(out, srv, *addr)
}

// serve runs the daemon until SIGINT/SIGTERM, then drains: the HTTP server
// stops accepting and waits for active requests, and the app server waits
// for admitted queries before closing any prepared session.
func serve(out io.Writer, srv *server.Server, addr string) error {
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(out, "sirumd listening on %s\n", addr)

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "sirumd draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := httpSrv.Shutdown(shutdownCtx)
	// Even when the drain timed out, still run the app-level Close: it waits
	// for the straggler queries (a running mine cannot be cancelled
	// mid-flight) and then tears sessions and their spill directories down.
	if cerr := srv.Close(); err == nil {
		err = cerr
	}
	return err
}

// runSelftest serves on an ephemeral loopback port and turns the load
// generator loose on it.
func runSelftest(out io.Writer, srv *server.Server, cfg server.LoadConfig) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer func() {
		httpSrv.Close()
		srv.Close()
	}()

	cfg.BaseURL = "http://" + ln.Addr().String()
	fmt.Fprintf(out, "selftest: %d queries x %d workers on %s (%d rows)\n",
		cfg.Queries, cfg.Concurrency, cfg.Dataset, cfg.Rows)
	rep, err := server.RunLoad(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, rep)
	if rep.Errors > 0 {
		return fmt.Errorf("selftest: %d of %d queries failed: %s", rep.Errors, rep.Queries, rep.FirstError)
	}
	return nil
}
