package main

import (
	"strings"
	"testing"
)

// TestSelftestSmoke runs the daemon's self-test end to end on a small
// synthetic dataset: server up, load generator through the real HTTP path
// (cold misses and cache hits), throughput, latency percentiles and cache
// hit rate reported, zero errors, then a kill-and-restore pass from the
// snapshot directory with baseline-verified answers.
func TestSelftestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("selftest mines real queries")
	}
	var out strings.Builder
	err := run([]string{
		"-selftest", "-dataset", "income", "-rows", "600",
		"-queries", "10", "-concurrency", "4", "-k", "2",
	}, &out)
	if err != nil {
		t.Fatalf("selftest failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"throughput:", "p50:", "p95:", "errors: 0", "consistency: verified",
		"cache hits:", "snapshot restart: 2 sessions restored",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("selftest output missing %q:\n%s", want, out.String())
		}
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}, &strings.Builder{}); err == nil {
		t.Error("unknown flag accepted")
	}
}
