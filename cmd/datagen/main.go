// Command datagen writes one of the synthetic evaluation datasets as CSV.
//
// Usage:
//
//	datagen -dataset gdelt -rows 100000 -out gdelt.csv [-seed 1]
//
// Known datasets: income, gdelt, susy, tlc (synthetic stand-ins for the
// thesis' evaluation data; see DESIGN.md §1) and flights (the 14-row running
// example of Table 1.1, -rows ignored).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sirum/internal/datagen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	name := fs.String("dataset", "", "dataset name: income|gdelt|susy|tlc|flights")
	rows := fs.Int("rows", 10000, "number of rows")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output CSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("-dataset is required")
	}
	ds, err := datagen.ByName(*name, *rows, *seed)
	if err != nil {
		return err
	}
	if *out == "" {
		return ds.WriteCSV(stdout)
	}
	if err := ds.WriteCSVFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d rows x %d dims to %s\n", ds.NumRows(), ds.NumDims(), *out)
	return nil
}
