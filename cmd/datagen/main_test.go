package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRunToStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-dataset", "flights"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "Day,Origin,Destination,Delay") {
		t.Errorf("unexpected header:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 15 {
		t.Errorf("want 15 lines (header + 14 rows):\n%s", out)
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	var sb strings.Builder
	if err := run([]string{"-dataset", "income", "-rows", "100", "-out", path}, &sb); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{{}, {"-dataset", "bogus"}, {"-badflag"}} {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
