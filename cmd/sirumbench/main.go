// Command sirumbench regenerates the thesis' tables and figures.
//
// Usage:
//
//	sirumbench -list
//	sirumbench -exp fig-5.3            # one experiment
//	sirumbench -exp all [-scale 2000]  # the whole evaluation
//
// Experiment ids are the thesis' figure/table numbers (fig-3.1 … fig-5.19,
// table-1.2, table-4.1) plus the ablations from DESIGN.md §5. The -scale
// flag divides the paper's dataset sizes; platform fixed overheads are
// scaled to match (DESIGN.md §1).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sirum/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sirumbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sirumbench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiments and exit")
	exp := fs.String("exp", "", "experiment id, or 'all'")
	scale := fs.Int("scale", 2000, "divide the paper's dataset sizes by this factor")
	quick := fs.Bool("quick", false, "additionally shrink k and |s| (bench mode)")
	seed := fs.Int64("seed", 1, "random seed")
	executors := fs.Int("executors", 16, "virtual executors")
	cores := fs.Int("cores", 4, "virtual cores per executor")
	backend := fs.String("backend", "sim", "substrate for the generic mining figures: sim or native (platform/scaling figures always simulate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, r := range experiments.All() {
			fmt.Fprintf(stdout, "%-20s %s\n", r.ID, r.Description)
		}
		return nil
	}
	if *exp == "" {
		return fmt.Errorf("-exp is required (or -list)")
	}
	if *backend != "sim" && *backend != "native" {
		return fmt.Errorf("unknown backend %q (want sim or native)", *backend)
	}
	cfg := experiments.Config{
		Scale: *scale, Quick: *quick, Seed: *seed,
		Executors: *executors, Cores: *cores, Backend: *backend,
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, r := range experiments.All() {
			ids = append(ids, r.ID)
		}
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Run(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for _, t := range tables {
			t.Render(stdout)
		}
		fmt.Fprintf(stdout, "(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
