// Command sirumbench regenerates the thesis' tables and figures, and runs
// the repository's throughput campaign.
//
// Usage:
//
//	sirumbench -list
//	sirumbench -exp fig-5.3            # one experiment
//	sirumbench -exp all [-scale 2000]  # the whole evaluation
//
//	sirumbench -bench [-quick] [-out BENCH_2.json] [-suites mine,serve]
//	sirumbench -compare [OLD.json] NEW.json [-tol 0.15]
//
// Experiment ids are the thesis' figure/table numbers (fig-3.1 … fig-5.19,
// table-1.2, table-4.1) plus the ablations from DESIGN.md §5. The -scale
// flag divides the paper's dataset sizes; platform fixed overheads are
// scaled to match (DESIGN.md §1).
//
// -bench measures the canonical perf suites (mine/explore/append cold vs
// prepared on both backends, plus an in-process serving storm) and emits the
// versioned JSON document checked in as BENCH_<n>.json; -compare diffs two
// such documents and flags moves beyond -tol in the bad direction. With one
// path, the baseline is the newest checked-in BENCH_<n>.json. Flagged
// latency/throughput deltas are advisory; flagged allocs_per_op deltas fail
// the command.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"sirum/internal/bench"
	"sirum/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sirumbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sirumbench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiments and exit")
	exp := fs.String("exp", "", "experiment id, or 'all'")
	scale := fs.Int("scale", 2000, "divide the paper's dataset sizes by this factor")
	quick := fs.Bool("quick", false, "additionally shrink k and |s| (bench mode)")
	seed := fs.Int64("seed", 1, "random seed")
	executors := fs.Int("executors", 16, "virtual executors")
	cores := fs.Int("cores", 4, "virtual cores per executor")
	backend := fs.String("backend", "sim", "substrate for the generic mining figures: sim or native (platform/scaling figures always simulate)")
	doBench := fs.Bool("bench", false, "run the perf suites and emit a BENCH JSON report")
	out := fs.String("out", "", "with -bench: write the report to this file (default stdout)")
	suites := fs.String("suites", "", "with -bench: comma-separated suite subset (mine,explore,append,serve)")
	compare := fs.Bool("compare", false, "diff two BENCH JSON reports: -compare OLD NEW")
	tol := fs.Float64("tol", 0.15, "with -compare: relative tolerance before a delta is flagged")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		return runCompare(fs.Args(), *tol, stdout)
	}
	if *doBench {
		return runBench(*out, *suites, *quick, stdout)
	}
	if *list {
		for _, r := range experiments.All() {
			fmt.Fprintf(stdout, "%-20s %s\n", r.ID, r.Description)
		}
		return nil
	}
	if *exp == "" {
		return fmt.Errorf("-exp is required (or -list)")
	}
	if *backend != "sim" && *backend != "native" {
		return fmt.Errorf("unknown backend %q (want sim or native)", *backend)
	}
	cfg := experiments.Config{
		Scale: *scale, Quick: *quick, Seed: *seed,
		Executors: *executors, Cores: *cores, Backend: *backend,
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, r := range experiments.All() {
			ids = append(ids, r.ID)
		}
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := experiments.Run(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for _, t := range tables {
			t.Render(stdout)
		}
		fmt.Fprintf(stdout, "(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runBench executes the throughput-campaign suites and writes the report.
func runBench(out, suites string, quick bool, stdout io.Writer) error {
	cfg := bench.Config{
		Quick: quick,
		Log:   func(format string, args ...any) { fmt.Fprintf(stdout, format+"\n", args...) },
	}
	if suites != "" {
		cfg.Suites = strings.Split(suites, ",")
	}
	start := time.Now()
	rep, err := bench.Run(cfg)
	if err != nil {
		return err
	}
	if err := bench.Validate(rep); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "(bench completed in %v)\n", time.Since(start).Round(time.Millisecond))
	if out == "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", buf)
		return nil
	}
	if err := bench.WriteFile(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", out)
	return nil
}

// runCompare diffs two reports. With a single path the baseline is
// auto-selected: the newest checked-in BENCH_<n>.json in the current
// directory, so CI keeps comparing against the latest trajectory point
// without edits. Latency and throughput regressions render flagged but stay
// advisory (shared runners wobble); allocs_per_op regressions fail the
// command — allocation counts are deterministic, so those flags are real.
func runCompare(args []string, tol float64, stdout io.Writer) error {
	// The flag package stops parsing at the first positional argument, so
	// the documented `-compare OLD NEW -tol 0.25` order leaves -tol in the
	// positionals; accept it there too.
	var paths []string
	for i := 0; i < len(args); i++ {
		if a := args[i]; a == "-tol" || a == "--tol" {
			if i+1 >= len(args) {
				return fmt.Errorf("-tol needs a value")
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil {
				return fmt.Errorf("-tol: %w", err)
			}
			tol = v
			i++
		} else {
			paths = append(paths, a)
		}
	}
	args = paths
	switch len(args) {
	case 1:
		base, err := newestBenchReport(".")
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "baseline: %s (newest checked-in trajectory point)\n", base)
		args = []string{base, args[0]}
	case 2:
	default:
		return fmt.Errorf("-compare needs one (NEW, baseline auto-selected) or two (OLD NEW) report paths, got %d", len(args))
	}
	oldRep, err := bench.ReadFile(args[0])
	if err != nil {
		return err
	}
	newRep, err := bench.ReadFile(args[1])
	if err != nil {
		return err
	}
	cmp := bench.Compare(oldRep, newRep, tol)
	cmp.Render(stdout)
	if reg := cmp.AllocRegressions(); len(reg) > 0 {
		return fmt.Errorf("%d allocs_per_op regression(s) beyond tolerance (latency/throughput flags are advisory; allocation flags block)", len(reg))
	}
	return nil
}

// newestBenchReport picks the highest-numbered BENCH_<n>.json in dir.
func newestBenchReport(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, m := range matches {
		base := filepath.Base(m)
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json"))
		if err != nil {
			continue
		}
		if n > bestN {
			best, bestN = m, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no checked-in BENCH_<n>.json baseline found in %s", dir)
	}
	return best, nil
}
