package main

import (
	"strings"
	"testing"

	"sirum/internal/bench"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig-3.1", "fig-5.19", "table-4.1", "ablation-groups"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunOneExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "table-1.2", "-scale", "50000", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "London") {
		t.Errorf("table-1.2 output missing London rule:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "completed in") {
		t.Error("missing completion line")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{{}, {"-exp", "fig-0.0"}, {"-badflag"}} {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestCompareFlagOrders pins that -tol is honoured before or after the two
// report paths (the flag package stops parsing at the first positional).
func TestCompareFlagOrders(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	rep := &bench.Report{
		SchemaVersion: bench.SchemaVersion,
		CreatedAt:     "2026-01-01T00:00:00Z",
		Host:          bench.Host{OS: "linux", Arch: "amd64", CPUs: 1, GoVersion: "go1.24"},
		Suites: []bench.SuiteResult{{
			Suite: "mine", Case: "prepared/native", Rows: 100, Iters: 1,
			QueriesPerSec: 10, P50NS: 1e6, P95NS: 2e6, AllocsPerOp: 100,
		}},
	}
	if err := bench.WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-compare", path, path, "-tol", "0.25"},
		{"-compare", "-tol", "0.25", path, path},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err != nil {
			t.Errorf("args %v: %v", args, err)
		}
		if !strings.Contains(sb.String(), "no regressions") {
			t.Errorf("args %v: self-compare flagged regressions:\n%s", args, sb.String())
		}
	}
	if err := run([]string{"-compare", path}, &strings.Builder{}); err == nil {
		t.Error("single-path compare accepted")
	}
	if err := run([]string{"-compare", path, path, "-tol"}, &strings.Builder{}); err == nil {
		t.Error("dangling -tol accepted")
	}
}
