package main

import (
	"os"
	"strings"
	"testing"

	"sirum/internal/bench"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig-3.1", "fig-5.19", "table-4.1", "ablation-groups"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunOneExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "table-1.2", "-scale", "50000", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "London") {
		t.Errorf("table-1.2 output missing London rule:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "completed in") {
		t.Error("missing completion line")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{{}, {"-exp", "fig-0.0"}, {"-badflag"}} {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestCompareFlagOrders pins that -tol is honoured before or after the two
// report paths (the flag package stops parsing at the first positional).
func TestCompareFlagOrders(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	rep := &bench.Report{
		SchemaVersion: bench.SchemaVersion,
		CreatedAt:     "2026-01-01T00:00:00Z",
		Host:          bench.Host{OS: "linux", Arch: "amd64", CPUs: 1, GoVersion: "go1.24"},
		Suites: []bench.SuiteResult{{
			Suite: "mine", Case: "prepared/native", Rows: 100, Iters: 1,
			QueriesPerSec: 10, P50NS: 1e6, P95NS: 2e6, AllocsPerOp: 100,
		}},
	}
	if err := bench.WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-compare", path, path, "-tol", "0.25"},
		{"-compare", "-tol", "0.25", path, path},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err != nil {
			t.Errorf("args %v: %v", args, err)
		}
		if !strings.Contains(sb.String(), "no regressions") {
			t.Errorf("args %v: self-compare flagged regressions:\n%s", args, sb.String())
		}
	}
	// Single-path compare auto-selects a baseline; with no checked-in
	// BENCH_<n>.json in the working directory it must fail loudly.
	if err := run([]string{"-compare", path}, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "BENCH_") {
		t.Errorf("single-path compare without baselines: err = %v", err)
	}
	if err := run([]string{"-compare", path, path, "-tol"}, &strings.Builder{}); err == nil {
		t.Error("dangling -tol accepted")
	}
}

// benchReport builds a minimal valid report with the given per-case
// throughput, latency and allocation numbers.
func benchReport(qps, p95 float64, allocs int64) *bench.Report {
	return &bench.Report{
		SchemaVersion: bench.SchemaVersion,
		CreatedAt:     "2026-01-01T00:00:00Z",
		Host:          bench.Host{OS: "linux", Arch: "amd64", CPUs: 1, GoVersion: "go1.24"},
		Suites: []bench.SuiteResult{{
			Suite: "explore", Case: "cold/native", Rows: 100, Iters: 1,
			QueriesPerSec: qps, P50NS: int64(p95 / 2), P95NS: int64(p95), AllocsPerOp: allocs,
		}},
	}
}

// TestCompareBlocksOnAllocRegressions pins the CI gate: allocs_per_op moves
// beyond tolerance fail the command, latency/throughput moves stay advisory.
func TestCompareBlocksOnAllocRegressions(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep *bench.Report) string {
		t.Helper()
		p := dir + "/" + name
		if err := bench.WriteFile(p, rep); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", benchReport(10, 1e6, 1000))

	var sb strings.Builder
	slow := write("slow.json", benchReport(2, 9e6, 1000)) // 5x slower, same allocs
	if err := run([]string{"-compare", base, slow, "-tol", "0.15"}, &sb); err != nil {
		t.Errorf("latency/throughput regression blocked the command: %v", err)
	}
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Error("latency regression not flagged in the rendering")
	}

	leaky := write("leaky.json", benchReport(10, 1e6, 5000)) // 5x the allocations
	err := run([]string{"-compare", base, leaky, "-tol", "0.15"}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "allocs_per_op") {
		t.Errorf("alloc regression did not block: err = %v", err)
	}

	improved := write("improved.json", benchReport(30, 0.5e6, 100))
	if err := run([]string{"-compare", base, improved, "-tol", "0.15"}, &strings.Builder{}); err != nil {
		t.Errorf("improvement flagged as blocking: %v", err)
	}
}

// TestCompareAutoSelectsNewestBaseline pins single-path compare picking the
// highest-numbered checked-in BENCH_<n>.json.
func TestCompareAutoSelectsNewestBaseline(t *testing.T) {
	dir := t.TempDir()
	for name, allocs := range map[string]int64{
		"BENCH_1.json":  9999999, // stale: comparing against it would flag
		"BENCH_2.json":  1000,
		"BENCH_x.json":  5, // malformed number: ignored
		"BENCH_10.json": 1000,
	} {
		if err := bench.WriteFile(dir+"/"+name, benchReport(10, 1e6, allocs)); err != nil {
			t.Fatal(err)
		}
	}
	newPath := dir + "/new.json"
	if err := bench.WriteFile(newPath, benchReport(10, 1e6, 1100)); err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	var sb strings.Builder
	if err := run([]string{"-compare", newPath, "-tol", "0.25"}, &sb); err != nil {
		t.Fatalf("auto-baseline compare: %v", err)
	}
	if !strings.Contains(sb.String(), "BENCH_10.json") {
		t.Errorf("baseline line does not name BENCH_10.json:\n%s", sb.String())
	}
}
