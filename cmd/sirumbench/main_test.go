package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig-3.1", "fig-5.19", "table-4.1", "ablation-groups"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunOneExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "table-1.2", "-scale", "50000", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "London") {
		t.Errorf("table-1.2 output missing London rule:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "completed in") {
		t.Error("missing completion line")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{{}, {"-exp", "fig-0.0"}, {"-badflag"}} {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
