package main

import (
	"strings"
	"testing"
)

// TestSelftestSmoke stands the in-process cluster up — 3 shard daemons, the
// router, the load generator spreading 32 sessions over the ring — and
// requires the three routed-serving acceptance checks to pass: zero errors
// with cross-shard consistency verified, repeat queries cached through the
// proxy, and per-shard balance within 2x of the mean.
func TestSelftestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("selftest mines real queries")
	}
	var out strings.Builder
	err := run([]string{
		"-selftest", "-dataset", "income", "-rows", "400",
		"-queries", "24", "-concurrency", "4", "-k", "2", "-sessions", "32",
	}, &out)
	if err != nil {
		t.Fatalf("selftest failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"on 3 shards", "errors: 0", "consistency: verified",
		"cache hits:", "shard balance:", "within 2x",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("selftest output missing %q:\n%s", want, out.String())
		}
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}, &strings.Builder{}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{}, &strings.Builder{}); err == nil {
		t.Error("serve mode without -shards accepted")
	}
	if err := run([]string{"-selftest", "-shard-count", "1"}, &strings.Builder{}); err == nil {
		t.Error("single-shard selftest accepted; it would prove nothing about routing")
	}
}
