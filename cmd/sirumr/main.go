// Command sirumr is the sharding router for a multi-node sirumd cluster:
// it serves the exact /v1 API of one daemon while placing every session on
// one of N shard daemons by consistent hashing over the session's
// canonical spec fingerprint (auto-id sessions hash their assigned id, so
// identical anonymous specs still spread). Health checks mark shards down
// and back up; a down shard's sessions answer clean 502/503 JSON errors
// while every other shard serves unimpeded.
//
// Usage:
//
//	sirumr -shards http://h1:8080,http://h2:8080 [-addr :8090]
//	       [-replicas 128] [-health 2s] [-timeout 2m]
//	sirumr -selftest [-shard-count 3] [-sessions 32] [-dataset income]
//	       [-rows 2000] [-queries 64] [-concurrency 8] [-k 3] [-sample 16]
//
// Cluster endpoints on top of the proxied /v1 surface:
//
//	GET  /v1/shards                    topology with health and session counts
//	POST /v1/shards/{id}/drain         stop placing new sessions on a shard
//	POST /v1/shards/{id}/undrain       resume placements
//	GET  /v1/metrics                   cluster rollup of every shard's metrics
//	GET  /v1/healthz                   ok | degraded | down
//
// The order of -shards is the cluster's identity: placement hashes shard
// positions, so keep the list stable across router restarts.
//
// -selftest stands up an in-process cluster (shard daemons on loopback
// ports plus the router) and drives the load generator through the router:
// ≥32 sessions spread over the shards, a concurrent mixed query storm with
// every same-spec answer cross-checked across shards, repeat queries
// required to come back "cached": true through the proxy, and the
// per-shard session balance required to stay under 2x the mean.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sirum/internal/router"
	"sirum/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sirumr:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sirumr", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	shards := fs.String("shards", "", "comma-separated shard base URLs, in stable topology order")
	replicas := fs.Int("replicas", 0, "virtual ring points per shard (0 = 128)")
	health := fs.Duration("health", 0, "health-check interval (0 = 2s)")
	timeout := fs.Duration("timeout", 0, "per-request proxy timeout (0 = 2m)")
	selftest := fs.Bool("selftest", false, "stand up an in-process cluster, drive the load generator through the router, verify balance/cache/consistency, and exit")
	shardCount := fs.Int("shard-count", 3, "selftest: in-process shard daemons to stand up")
	sessions := fs.Int("sessions", 32, "selftest: sessions to spread over the shards (minimum 32; the balance bound is judged over them)")
	dataset := fs.String("dataset", "income", "selftest: built-in dataset backing the load sessions")
	rows := fs.Int("rows", 2000, "selftest: dataset rows per session")
	queries := fs.Int("queries", 64, "selftest: total queries to fire")
	concurrency := fs.Int("concurrency", 8, "selftest: concurrent client workers")
	k := fs.Int("k", 3, "selftest: rules per query")
	sample := fs.Int("sample", 16, "selftest: |s| for candidate pruning")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *selftest {
		return runSelftest(out, *shardCount, server.LoadConfig{
			Dataset:     *dataset,
			Rows:        *rows,
			Queries:     *queries,
			Concurrency: *concurrency,
			K:           *k,
			SampleSize:  *sample,
			Sessions:    *sessions,
		})
	}

	if *shards == "" {
		return errors.New("-shards is required (comma-separated shard URLs)")
	}
	rt, err := router.New(router.Config{
		Shards:         strings.Split(*shards, ","),
		Replicas:       *replicas,
		HealthInterval: *health,
		Timeout:        *timeout,
	})
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Close()
	return serve(out, rt, *addr)
}

// serve runs the router until SIGINT/SIGTERM. The router holds no
// sessions, so draining is only the HTTP server's concern.
func serve(out io.Writer, rt *router.Router, addr string) error {
	httpSrv := &http.Server{Addr: addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(out, "sirumr listening on %s\n", addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "sirumr draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shutdownCtx)
}

// shardDaemon is one in-process selftest shard: an app server on a
// loopback listener.
type shardDaemon struct {
	srv  *server.Server
	http *http.Server
	base string
}

func startShard(id string) (*shardDaemon, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{ShardID: id, Advertise: "http://" + ln.Addr().String()})
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &shardDaemon{srv: srv, http: hs, base: "http://" + ln.Addr().String()}, nil
}

func (d *shardDaemon) stop() {
	d.http.Close()
	d.srv.Close()
}

// runSelftest proves the routed cluster end to end: shards up, router up,
// the load storm spread over the ring, then the three routed-serving
// acceptance checks — cross-shard consistency, cache hits through the
// proxy, and per-shard balance within 2x of the mean.
func runSelftest(out io.Writer, shardCount int, cfg server.LoadConfig) error {
	if shardCount < 2 {
		return fmt.Errorf("selftest needs at least 2 shards, got %d", shardCount)
	}
	if cfg.Sessions < 32 {
		return fmt.Errorf("selftest needs -sessions >= 32 for the balance bound to mean anything, got %d", cfg.Sessions)
	}
	var daemons []*shardDaemon
	defer func() {
		for _, d := range daemons {
			d.stop()
		}
	}()
	bases := make([]string, 0, shardCount)
	for i := 0; i < shardCount; i++ {
		d, err := startShard(fmt.Sprintf("s%d", i))
		if err != nil {
			return err
		}
		daemons = append(daemons, d)
		bases = append(bases, d.base)
	}
	rt, err := router.New(router.Config{Shards: bases})
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	routerSrv := &http.Server{Handler: rt.Handler()}
	go routerSrv.Serve(ln)
	defer routerSrv.Close()
	cfg.BaseURL = "http://" + ln.Addr().String()

	fmt.Fprintf(out, "selftest: %d queries x %d workers over %d sessions on %d shards (%s, %d rows)\n",
		cfg.Queries, cfg.Concurrency, cfg.Sessions, shardCount, cfg.Dataset, cfg.Rows)
	rep, err := server.RunLoad(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, rep)
	if rep.Errors > 0 {
		return fmt.Errorf("selftest: %d of %d queries failed: %s", rep.Errors, rep.Queries, rep.FirstError)
	}
	if rep.Consistency != "verified" {
		return fmt.Errorf("selftest: cross-shard consistency not verified: %s", rep.Consistency)
	}
	if rep.CacheHits == 0 {
		return errors.New("selftest: no repeat query reported \"cached\": true through the proxy")
	}
	if len(rep.ShardSessions) != shardCount {
		return fmt.Errorf("selftest: balance report covers %d shards, want %d", len(rep.ShardSessions), shardCount)
	}
	var total, max int64
	for _, n := range rep.ShardSessions {
		total += n
		if n > max {
			max = n
		}
	}
	if total < int64(cfg.Sessions) {
		return fmt.Errorf("selftest: balance judged over %d sessions, want >= %d", total, cfg.Sessions)
	}
	mean := float64(total) / float64(shardCount)
	if float64(max) > 2*mean {
		return fmt.Errorf("selftest: shard imbalance: max %d sessions vs mean %.1f (over 2x)", max, mean)
	}
	fmt.Fprintf(out, "balance: max %d sessions per shard vs mean %.1f over %d sessions — within 2x\n", max, mean, total)
	return nil
}
