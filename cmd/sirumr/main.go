// Command sirumr is the sharding router for a multi-node sirumd cluster:
// it serves the exact /v1 API of one daemon while placing every session on
// one of N shard daemons by consistent hashing over the session's
// canonical spec fingerprint (auto-id sessions hash their assigned id, so
// identical anonymous specs still spread). Health checks mark shards down
// and back up; a down shard's sessions answer clean 502/503 JSON errors
// while every other shard serves unimpeded.
//
// Usage:
//
//	sirumr -shards http://h1:8080,http://h2:8080 [-addr :8090]
//	       [-replicas 128] [-health 2s] [-timeout 2m]
//	sirumr migrate -shard s1 [-router http://127.0.0.1:8090] [-timeout 10m]
//	sirumr -selftest [-shard-count 3] [-sessions 32] [-dataset income]
//	       [-rows 2000] [-queries 64] [-concurrency 8] [-k 3] [-sample 16]
//
// Cluster endpoints on top of the proxied /v1 surface:
//
//	GET  /v1/shards                    topology with health and session counts
//	POST /v1/shards/{id}/drain         stop placing new sessions on a shard
//	POST /v1/shards/{id}/undrain       resume placements
//	POST /v1/shards/{id}/migrate       drain a shard and move its sessions off
//	GET  /v1/datasets/{id}/export      a session's migration document
//	GET  /v1/metrics                   cluster rollup of every shard's metrics
//	GET  /v1/healthz                   ok | degraded | down
//
// The migrate subcommand drives POST /v1/shards/{id}/migrate against a
// running router and prints each moved session with its verified
// fingerprint and epoch; it exits non-zero while any session remains on
// the origin (re-run to resume — migration is idempotent).
//
// The order of -shards is the cluster's identity: placement hashes shard
// positions, so keep the list stable across router restarts.
//
// -selftest stands up an in-process cluster (shard daemons on loopback
// ports plus the router) and drives the load generator through the router:
// ≥32 sessions spread over the shards, a concurrent mixed query storm with
// every same-spec answer cross-checked across shards, repeat queries
// required to come back "cached": true through the proxy, and the
// per-shard session balance required to stay under 2x the mean.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sirum/internal/router"
	"sirum/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sirumr:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "migrate" {
		return runMigrate(args[1:], out)
	}
	fs := flag.NewFlagSet("sirumr", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	shards := fs.String("shards", "", "comma-separated shard base URLs, in stable topology order")
	replicas := fs.Int("replicas", 0, "virtual ring points per shard (0 = 128)")
	health := fs.Duration("health", 0, "health-check interval (0 = 2s)")
	timeout := fs.Duration("timeout", 0, "per-request proxy timeout (0 = 2m)")
	selftest := fs.Bool("selftest", false, "stand up an in-process cluster, drive the load generator through the router, verify balance/cache/consistency, and exit")
	shardCount := fs.Int("shard-count", 3, "selftest: in-process shard daemons to stand up")
	sessions := fs.Int("sessions", 32, "selftest: sessions to spread over the shards (minimum 32; the balance bound is judged over them)")
	dataset := fs.String("dataset", "income", "selftest: built-in dataset backing the load sessions")
	rows := fs.Int("rows", 2000, "selftest: dataset rows per session")
	queries := fs.Int("queries", 64, "selftest: total queries to fire")
	concurrency := fs.Int("concurrency", 8, "selftest: concurrent client workers")
	k := fs.Int("k", 3, "selftest: rules per query")
	sample := fs.Int("sample", 16, "selftest: |s| for candidate pruning")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *selftest {
		return runSelftest(out, *shardCount, server.LoadConfig{
			Dataset:     *dataset,
			Rows:        *rows,
			Queries:     *queries,
			Concurrency: *concurrency,
			K:           *k,
			SampleSize:  *sample,
			Sessions:    *sessions,
		})
	}

	if *shards == "" {
		return errors.New("-shards is required (comma-separated shard URLs)")
	}
	rt, err := router.New(router.Config{
		Shards:         strings.Split(*shards, ","),
		Replicas:       *replicas,
		HealthInterval: *health,
		Timeout:        *timeout,
	})
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Close()
	return serve(out, rt, *addr)
}

// runMigrate drives POST /v1/shards/{id}/migrate against a running router:
// the operator-facing half of decommissioning a shard.
func runMigrate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sirumr migrate", flag.ContinueOnError)
	routerURL := fs.String("router", "http://127.0.0.1:8090", "router base URL")
	shardID := fs.String("shard", "", "logical shard id to drain and empty (see GET /v1/shards)")
	timeout := fs.Duration("timeout", 10*time.Minute, "overall request timeout (every session re-prepares on its destination)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shardID == "" {
		return errors.New("-shard is required (a logical shard id from GET /v1/shards)")
	}
	c := &server.Client{BaseURL: strings.TrimRight(*routerURL, "/"), HTTP: &http.Client{Timeout: *timeout}}
	var resp router.MigrateResponse
	if err := c.Do("POST", "/v1/shards/"+*shardID+"/migrate", nil, &resp); err != nil {
		return err
	}
	for _, m := range resp.Moved {
		note := ""
		if m.Resumed {
			note = " (resumed)"
		}
		fmt.Fprintf(out, "moved %s: %s -> %s fingerprint=%s epoch=%d%s\n", m.ID, m.From, m.To, m.Fingerprint, m.Epoch, note)
	}
	for _, f := range resp.Failed {
		fmt.Fprintf(out, "failed %s: %s\n", f.ID, f.Error)
	}
	fmt.Fprintf(out, "shard %s: %d moved, %d remaining (draining=%v)\n", resp.Shard, len(resp.Moved), resp.Remaining, resp.Draining)
	if resp.Remaining > 0 {
		return fmt.Errorf("%d sessions still on shard %s; re-run migrate to resume", resp.Remaining, resp.Shard)
	}
	return nil
}

// serve runs the router until SIGINT/SIGTERM. The router holds no
// sessions, so draining is only the HTTP server's concern.
func serve(out io.Writer, rt *router.Router, addr string) error {
	httpSrv := &http.Server{Addr: addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(out, "sirumr listening on %s\n", addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "sirumr draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shutdownCtx)
}

// shardDaemon is one in-process selftest shard: an app server on a
// loopback listener.
type shardDaemon struct {
	srv  *server.Server
	http *http.Server
	base string
}

func startShard(id string) (*shardDaemon, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{ShardID: id, Advertise: "http://" + ln.Addr().String()})
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &shardDaemon{srv: srv, http: hs, base: "http://" + ln.Addr().String()}, nil
}

func (d *shardDaemon) stop() {
	d.http.Close()
	d.srv.Close()
}

// runSelftest proves the routed cluster end to end: shards up, router up,
// the load storm spread over the ring, then the three routed-serving
// acceptance checks — cross-shard consistency, cache hits through the
// proxy, and per-shard balance within 2x of the mean.
func runSelftest(out io.Writer, shardCount int, cfg server.LoadConfig) error {
	if shardCount < 2 {
		return fmt.Errorf("selftest needs at least 2 shards, got %d", shardCount)
	}
	if cfg.Sessions < 32 {
		return fmt.Errorf("selftest needs -sessions >= 32 for the balance bound to mean anything, got %d", cfg.Sessions)
	}
	var daemons []*shardDaemon
	defer func() {
		for _, d := range daemons {
			d.stop()
		}
	}()
	bases := make([]string, 0, shardCount)
	for i := 0; i < shardCount; i++ {
		d, err := startShard(fmt.Sprintf("s%d", i))
		if err != nil {
			return err
		}
		daemons = append(daemons, d)
		bases = append(bases, d.base)
	}
	rt, err := router.New(router.Config{Shards: bases})
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	routerSrv := &http.Server{Handler: rt.Handler()}
	go routerSrv.Serve(ln)
	defer routerSrv.Close()
	cfg.BaseURL = "http://" + ln.Addr().String()

	fmt.Fprintf(out, "selftest: %d queries x %d workers over %d sessions on %d shards (%s, %d rows)\n",
		cfg.Queries, cfg.Concurrency, cfg.Sessions, shardCount, cfg.Dataset, cfg.Rows)
	rep, err := server.RunLoad(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, rep)
	if rep.Errors > 0 {
		return fmt.Errorf("selftest: %d of %d queries failed: %s", rep.Errors, rep.Queries, rep.FirstError)
	}
	if rep.Consistency != "verified" {
		return fmt.Errorf("selftest: cross-shard consistency not verified: %s", rep.Consistency)
	}
	if rep.CacheHits == 0 {
		return errors.New("selftest: no repeat query reported \"cached\": true through the proxy")
	}
	if len(rep.ShardSessions) != shardCount {
		return fmt.Errorf("selftest: balance report covers %d shards, want %d", len(rep.ShardSessions), shardCount)
	}
	var total, max int64
	for _, n := range rep.ShardSessions {
		total += n
		if n > max {
			max = n
		}
	}
	if total < int64(cfg.Sessions) {
		return fmt.Errorf("selftest: balance judged over %d sessions, want >= %d", total, cfg.Sessions)
	}
	mean := float64(total) / float64(shardCount)
	if float64(max) > 2*mean {
		return fmt.Errorf("selftest: shard imbalance: max %d sessions vs mean %.1f (over 2x)", max, mean)
	}
	fmt.Fprintf(out, "balance: max %d sessions per shard vs mean %.1f over %d sessions — within 2x\n", max, mean, total)
	if err := migratePass(out, cfg.BaseURL, daemons, cfg); err != nil {
		return fmt.Errorf("migrate pass: %w", err)
	}
	return nil
}

// migratePass proves decommissioning end to end: spread a handful of
// sessions over the cluster (some grown past epoch 0 by appends), pick the
// fullest shard, record per-session baselines, migrate the whole shard
// through the router, then verify the origin emptied, every sampled
// session serves from its new home with an identical fingerprint and
// epoch, answers match the pre-migration baselines, and a repeat query
// hits the destination's result cache.
func migratePass(out io.Writer, baseURL string, daemons []*shardDaemon, cfg server.LoadConfig) error {
	rc := &server.Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 10 * time.Minute}}

	// The load storm deletes its sessions on the way out, so the pass
	// seeds its own: six sessions (two named, four anonymous), two of
	// them appended to so migration replays a non-empty append journal.
	var ids []string
	for i := 0; i < 6; i++ {
		req := server.CreateRequest{
			Generator: &server.GeneratorSpec{Name: cfg.Dataset, Rows: cfg.Rows, Seed: 1},
			Prepare:   server.PrepareSpec{SampleSize: cfg.SampleSize, Seed: 1},
		}
		if i < 2 {
			req.ID = fmt.Sprintf("migrate-pass-%d", i)
		}
		info, err := rc.CreateSession(req)
		if err != nil {
			return fmt.Errorf("creating session %d: %w", i, err)
		}
		ids = append(ids, info.ID)
		if i%3 == 0 {
			dims := make([]string, len(info.Dims))
			for d := range dims {
				dims[d] = "migrated-row"
			}
			if _, err := rc.AppendRows(info.ID, server.AppendRequest{
				Rows: []server.RowJSON{{Dims: dims, Measure: 5}},
			}); err != nil {
				return fmt.Errorf("appending to %s: %w", info.ID, err)
			}
		}
	}
	defer func() {
		for _, id := range ids {
			rc.DeleteSession(id)
		}
	}()

	// The fullest shard gives the migration the most to prove.
	origin, originSessions := -1, server.ListResponse{}
	for i, d := range daemons {
		sc := &server.Client{BaseURL: d.base, HTTP: &http.Client{Timeout: time.Minute}}
		list, err := sc.ListSessions()
		if err != nil {
			return fmt.Errorf("listing shard %d: %w", i, err)
		}
		if origin < 0 || len(list.Sessions) > len(originSessions.Sessions) {
			origin, originSessions = i, list
		}
	}
	if len(originSessions.Sessions) == 0 {
		return errors.New("no shard holds any sessions")
	}
	originID := fmt.Sprintf("s%d", origin)

	type baseline struct {
		id          string
		fingerprint string
		epoch       int64
		rules       []string
	}
	mineReq := server.MineRequest{K: cfg.K, SampleSize: cfg.SampleSize, Seed: 7}
	ruleList := func(resp server.MineResponse) []string {
		rules := make([]string, 0, len(resp.Rules))
		for _, r := range resp.Rules {
			rules = append(rules, r.Display)
		}
		return rules
	}
	var baselines []baseline
	for _, info := range originSessions.Sessions {
		if len(baselines) == 3 {
			break
		}
		got, err := rc.GetSession(info.ID)
		if err != nil {
			return err
		}
		if got.Stats == nil {
			return fmt.Errorf("session %s reports no stats through the router", info.ID)
		}
		resp, err := rc.Mine(info.ID, mineReq)
		if err != nil {
			return err
		}
		baselines = append(baselines, baseline{
			id: info.ID, fingerprint: got.Stats.Fingerprint, epoch: got.Stats.Epoch, rules: ruleList(resp),
		})
	}

	var migrated router.MigrateResponse
	if err := rc.Do("POST", "/v1/shards/"+originID+"/migrate", nil, &migrated); err != nil {
		return err
	}
	if migrated.Remaining > 0 {
		return fmt.Errorf("%d of %d sessions failed to migrate off %s: %s",
			migrated.Remaining, len(originSessions.Sessions), originID, migrated.Failed[0].Error)
	}
	if len(migrated.Moved) != len(originSessions.Sessions) {
		return fmt.Errorf("moved %d sessions, want %d", len(migrated.Moved), len(originSessions.Sessions))
	}

	// The origin must be empty: every copy deleted, not just retargeted.
	sc := &server.Client{BaseURL: daemons[origin].base, HTTP: &http.Client{Timeout: time.Minute}}
	left, err := sc.ListSessions()
	if err != nil {
		return err
	}
	if len(left.Sessions) > 0 {
		return fmt.Errorf("origin %s still holds %d sessions after migration", originID, len(left.Sessions))
	}

	for _, b := range baselines {
		got, err := rc.GetSession(b.id)
		if err != nil {
			return fmt.Errorf("session %s after migration: %w", b.id, err)
		}
		if got.Stats == nil || got.Stats.Fingerprint != b.fingerprint || got.Stats.Epoch != b.epoch {
			return fmt.Errorf("session %s changed identity across migration: fingerprint/epoch mismatch", b.id)
		}
		fresh, err := rc.Mine(b.id, mineReq)
		if err != nil {
			return fmt.Errorf("mining %s on its new home: %w", b.id, err)
		}
		if got := ruleList(fresh); !equalStrings(got, b.rules) {
			return fmt.Errorf("session %s answers differently on its new home: %v vs %v", b.id, got, b.rules)
		}
		repeat, err := rc.Mine(b.id, mineReq)
		if err != nil {
			return err
		}
		if !repeat.Cached {
			return fmt.Errorf("repeat query on migrated session %s missed the destination's result cache", b.id)
		}
	}
	// Put the emptied shard back in rotation so the selftest ends with a
	// healthy cluster (and exercises undrain while at it).
	if err := rc.Do("POST", "/v1/shards/"+originID+"/undrain", nil, nil); err != nil {
		return err
	}
	fmt.Fprintf(out, "migrate: %d sessions off %s, origin empty, %d verified by fingerprint+epoch+baseline, repeat queries cached on destination\n",
		len(migrated.Moved), originID, len(baselines))
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
