// Command sirumvet runs sirum's project-invariant static-analysis suite
// (internal/lint) over the module: the conventions that keep hot paths
// allocation-free, responses byte-pinned, lifecycles paired, error prefixes
// classifiable and metric names coherent, machine-checked.
//
// Usage:
//
//	sirumvet [-checks zerocopykey,errprefix] [-list] [packages]
//
// Package patterns are module-relative ("./...", "./internal/rule",
// "./internal/..."); with none, the whole module is checked. Findings print
// as file:line:col diagnostics; the exit status is 1 when any finding is
// reported, 2 on load errors, 0 on a clean tree. A justified exception is
// annotated in place:
//
//	//sirum:allow <check> <reason>
//
// on the offending line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path"
	"path/filepath"
	"strings"

	"sirum/internal/lint"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list the available checks and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sirumvet [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, c := range lint.Checks() {
			fmt.Printf("%-16s %s\n", c.Name, c.Doc)
		}
		return
	}

	checks, err := selectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sirumvet:", err)
		os.Exit(2)
	}
	root, module, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sirumvet:", err)
		os.Exit(2)
	}
	m, err := lint.Load(root, module)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sirumvet:", err)
		os.Exit(2)
	}
	if err := filterPackages(m, root, module, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "sirumvet:", err)
		os.Exit(2)
	}

	findings := lint.RunChecks(m, checks)
	cwd, _ := os.Getwd()
	for _, f := range findings {
		name := f.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sirumvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func selectChecks(names string) ([]*lint.Check, error) {
	if names == "" {
		return nil, nil // all
	}
	byName := make(map[string]*lint.Check)
	for _, c := range lint.Checks() {
		byName[c.Name] = c
	}
	var out []*lint.Check
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have %s)", name, strings.Join(lint.CheckNames(), ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

// filterPackages narrows m.Pkgs to the given patterns. Patterns are
// module-relative paths as the go tool writes them: "./..." keeps
// everything, "./x" keeps one package, "./x/..." keeps a subtree.
func filterPackages(m *lint.Module, root, module string, patterns []string) error {
	if len(patterns) == 0 {
		return nil
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	rel, err := filepath.Rel(root, cwd)
	if err != nil || strings.HasPrefix(rel, "..") {
		return fmt.Errorf("working directory %s is outside module root %s", cwd, root)
	}
	base := module
	if rel != "." {
		base = path.Join(module, filepath.ToSlash(rel))
	}
	keep := func(p string) bool {
		for _, pat := range patterns {
			pat = strings.TrimPrefix(pat, "./")
			tree := false
			if strings.HasSuffix(pat, "...") {
				tree = true
				pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			}
			target := base
			if pat != "" && pat != "." {
				target = path.Join(base, pat)
			}
			if p == target || (tree && strings.HasPrefix(p, target+"/")) || (tree && target == module && p == module) {
				return true
			}
		}
		return false
	}
	var kept []*lint.Package
	for _, pkg := range m.Pkgs {
		if keep(pkg.Path) {
			kept = append(kept, pkg)
		}
	}
	if len(kept) == 0 {
		return fmt.Errorf("no packages match %v", patterns)
	}
	m.Pkgs = kept
	return nil
}
