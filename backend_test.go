package sirum

import (
	"math"
	"testing"
)

// TestBackendsProduceIdenticalRules is the cross-backend contract: the same
// mining job must yield the same rule list on the simulated cluster and on
// the native multicore backend, across datasets and option shapes (the
// quickstart flight data, sample-based pruning, exhaustive generation, and
// mining on a sample fraction).
func TestBackendsProduceIdenticalRules(t *testing.T) {
	cases := []struct {
		name    string
		dataset string
		rows    int
		opt     Options
	}{
		{"flights-exhaustive", "flights", 0, Options{K: 3}},
		{"income-sampled", "income", 1500, Options{K: 4, SampleSize: 16, Seed: 2}},
		{"gdelt-sampled", "gdelt", 2000, Options{K: 3, SampleSize: 16, Seed: 3}},
		{"income-multirule", "income", 1500, Options{K: 4, SampleSize: 16, Seed: 2, Variant: VariantMultiRule}},
		{"income-fraction", "income", 3000, Options{K: 3, SampleFraction: 0.5, Seed: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds, err := Generate(tc.dataset, tc.rows, 1)
			if err != nil {
				t.Fatal(err)
			}
			simOpt := tc.opt
			simOpt.Backend = BackendSim
			natOpt := tc.opt
			natOpt.Backend = BackendNative
			sim, err := ds.Mine(simOpt)
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			nat, err := ds.Mine(natOpt)
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			if len(sim.Rules) == 0 {
				t.Fatal("sim mined nothing")
			}
			if len(sim.Rules) != len(nat.Rules) {
				t.Fatalf("rule counts differ: sim %d native %d", len(sim.Rules), len(nat.Rules))
			}
			for i := range sim.Rules {
				s, n := sim.Rules[i], nat.Rules[i]
				if s.String() != n.String() {
					t.Errorf("rule %d: sim %s vs native %s", i, s, n)
				}
				if s.Count != n.Count {
					t.Errorf("rule %d count: sim %d vs native %d", i, s.Count, n.Count)
				}
				if relErr(s.Avg, n.Avg) > 1e-9 {
					t.Errorf("rule %d avg: sim %v vs native %v", i, s.Avg, n.Avg)
				}
				if relErr(s.Gain, n.Gain) > 1e-6 {
					t.Errorf("rule %d gain: sim %v vs native %v", i, s.Gain, n.Gain)
				}
			}
			if relErr(sim.KL, nat.KL) > 1e-6 {
				t.Errorf("KL: sim %v vs native %v", sim.KL, nat.KL)
			}
			if relErr(sim.InfoGain, nat.InfoGain) > 1e-6 {
				t.Errorf("InfoGain: sim %v vs native %v", sim.InfoGain, nat.InfoGain)
			}
		})
	}
}

// relErr is |a-b| relative to the larger magnitude (absolute near zero).
func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1e-9 {
		return d
	}
	return d / m
}

// TestExploreOnNativeBackend smoke-tests the exploration application on the
// native substrate.
func TestExploreOnNativeBackend(t *testing.T) {
	ds, err := Generate("flights", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := ds.Explore(ExploreOptions{K: 2, GroupBys: 2, Backend: BackendSim})
	if err != nil {
		t.Fatal(err)
	}
	natRes, err := ds.Explore(ExploreOptions{K: 2, GroupBys: 2, Backend: BackendNative})
	if err != nil {
		t.Fatal(err)
	}
	if len(natRes.Result.Rules) != len(simRes.Result.Rules) {
		t.Fatalf("recommendation counts differ: sim %d native %d",
			len(simRes.Result.Rules), len(natRes.Result.Rules))
	}
	for i := range natRes.Result.Rules {
		if natRes.Result.Rules[i].String() != simRes.Result.Rules[i].String() {
			t.Errorf("recommendation %d: sim %s vs native %s",
				i, simRes.Result.Rules[i], natRes.Result.Rules[i])
		}
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	ds, err := Generate("flights", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Mine(Options{K: 2, Backend: "quantum"}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := ds.Explore(ExploreOptions{K: 2, Backend: "quantum"}); err == nil {
		t.Error("unknown backend accepted by Explore")
	}
}
