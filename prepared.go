package sirum

import (
	"fmt"
	"sync"

	"sirum/internal/engine"
	"sirum/internal/explore"
	"sirum/internal/miner"
	"sirum/internal/spec"
)

// PrepareOptions configures Dataset.Prepare — the work done once per
// dataset, before any query: building the execution substrate, loading and
// partitioning the data onto it, computing the measure transform, drawing
// the candidate-pruning sample and its inverted index.
type PrepareOptions struct {
	// SampleSize is |s| for candidate pruning, drawn once so every query
	// sees the same candidate space. 0 keeps the Mine default (64 for
	// datasets above 1000 rows, exhaustive otherwise).
	SampleSize int
	// Seed drives sampling (default 1). Queries whose Seed matches reuse
	// the prepared sample; others draw their own.
	Seed int64
	// SampleFraction in (0,1) prepares a Bernoulli sample of the data
	// ("SIRUM on sample data") instead of the data itself.
	SampleFraction float64
	// Cluster sizes the execution substrate the session owns.
	Cluster Cluster
	// Backend selects the execution substrate (default BackendNative).
	Backend Backend
	// RemineFactor tunes Append's staleness trigger: a full re-mine fires
	// when the refit rule list's share of unexplained divergence exceeds
	// RemineFactor times the share right after the last full mine (default
	// 1.5; lower re-mines more eagerly — the share saturates at 1.0 when
	// the rules stop explaining anything, so thresholds must stay below
	// that times the base share).
	RemineFactor float64
}

// Canonical normalizes the prepare options for a dataset of the given size
// into their canonical prep spec: defaults applied, backend spelled out.
// The prep spec is part of a session's cacheable identity — sessions over
// the same dataset source with equal prep specs answer queries
// identically, so servers may share cached results between them.
func (o PrepareOptions) Canonical(rows int) spec.PrepSpec {
	s := spec.PrepSpec{
		Version:        spec.Version,
		SampleSize:     o.SampleSize,
		Seed:           o.Seed,
		SampleFraction: o.SampleFraction,
		Backend:        string(o.Backend),
		RemineFactor:   o.RemineFactor,
	}
	if s.SampleSize == 0 && rows > 1000 {
		s.SampleSize = 64
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Backend == "" {
		s.Backend = string(BackendNative)
	}
	if s.RemineFactor <= 0 {
		s.RemineFactor = 1.5 // NewIncremental's default staleness trigger
	}
	return s
}

// prepOptions derives the internal preparation options via the canonical
// spec, keeping the defaults in one place.
func (o PrepareOptions) prepOptions(rows int) miner.PrepOptions {
	c := o.Canonical(rows)
	return miner.PrepOptions{SampleSize: c.SampleSize, Seed: c.Seed, SampleFraction: c.SampleFraction}
}

// Prepared is a mining session: a dataset prepared once on a long-lived
// execution substrate, answering many queries. Mine and Explore are safe to
// call concurrently — every query works on a private fork of the mutable
// estimate state with private metrics, sharing only the immutable prepared
// blocks, sample and index. Append folds new data in; it invalidates the
// prepared state and rebuilds it on the grown dataset, blocking until
// in-flight queries finish. Close releases the substrate.
type Prepared struct {
	mu       sync.RWMutex
	d        *Dataset
	cl       engine.Backend
	popt     PrepareOptions
	prep     *miner.Prep
	inc      *miner.Incremental
	dsSpec   spec.DatasetSpec // source identity; Epoch/Chain fields stay zero here
	prepSpec spec.PrepSpec
	epoch    int64    // bumped by every successful Append
	chain    [32]byte // content chain: source fp, extended by each batch's content hash
	closed   bool
}

// Prepare loads the dataset onto a fresh execution substrate and returns the
// session. The caller owns the session and must Close it.
func (d *Dataset) Prepare(opt PrepareOptions) (*Prepared, error) {
	cl, err := opt.Cluster.backend(opt.Backend)
	if err != nil {
		return nil, err
	}
	prep, err := miner.Prepare(cl, d.ds, opt.prepOptions(d.NumRows()))
	if err != nil {
		cl.Close()
		return nil, err
	}
	inc := miner.NewIncremental(cl, miner.Options{})
	inc.Seed(d.ds)
	if opt.RemineFactor > 0 {
		inc.RemineFactor = opt.RemineFactor
	}
	dsSpec := d.sourceSpec()
	return &Prepared{
		d: d, cl: cl, popt: opt, prep: prep, inc: inc,
		dsSpec:   dsSpec,
		prepSpec: opt.Canonical(d.NumRows()),
		chain:    dsSpec.Fingerprint(),
	}, nil
}

// DatasetSpec returns the canonical identity of the data this session
// serves: the source fingerprint with Epoch set to the current epoch. The
// source part is stable for the session's lifetime; the epoch is bumped by
// every successful Append, which is what lets result caches invalidate
// append-stale entries for free.
func (p *Prepared) DatasetSpec() spec.DatasetSpec {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.datasetSpecLocked()
}

// datasetSpecLocked stamps the source spec with the current epoch and
// content chain; callers hold at least the read lock.
func (p *Prepared) datasetSpecLocked() spec.DatasetSpec {
	s := p.dsSpec
	s.Epoch = p.epoch
	s.Chain = spec.Hex(p.chain)
	return s
}

// PrepSpec returns the canonical prepare spec the session was built with.
func (p *Prepared) PrepSpec() spec.PrepSpec {
	return p.prepSpec // immutable after Prepare
}

// Epoch returns how many Appends the session has absorbed.
func (p *Prepared) Epoch() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.epoch
}

// MineSpec canonicalizes a mine query against the session's current data
// in one atomic step: the returned dataset spec's epoch and the
// rows-dependent query defaults are read under the same lock, so the pair
// is consistent even while Appends race. It does not run the query.
func (p *Prepared) MineSpec(opt Options) (spec.DatasetSpec, spec.QuerySpec, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	q, err := opt.Canonical(p.d.NumRows())
	return p.datasetSpecLocked(), q, err
}

// ExploreSpec is MineSpec for exploration queries.
func (p *Prepared) ExploreSpec(opt ExploreOptions) (spec.DatasetSpec, spec.QuerySpec) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.datasetSpecLocked(), opt.Canonical()
}

// NumRows returns the current (accumulated) number of tuples.
func (p *Prepared) NumRows() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.d.NumRows()
}

// SessionStats describes a live session for registries and dashboards: the
// data it currently serves and the substrate-lifetime metrics accumulated
// across every query answered so far.
type SessionStats struct {
	// Rows is the accumulated dataset size (grows with Append).
	Rows int `json:"rows"`
	// Epoch counts the Appends absorbed so far; it is part of every cached
	// result's key, so a bumped epoch is what invalidates stale entries.
	Epoch int64 `json:"epoch"`
	// Fingerprint is the hex source fingerprint of the dataset the session
	// serves (stable across Appends; see DatasetSpec).
	Fingerprint string `json:"fingerprint"`
	// Backend names the execution substrate ("native", "sim").
	Backend string `json:"backend"`
	// PooledDatasets is how many prepared datasets the session's backend
	// currently retains, out of a limit of PoolLimit (several sessions may
	// share a backend's pool).
	PooledDatasets int `json:"pooled_datasets"`
	PoolLimit      int `json:"pool_limit"`
	// Lifetime aggregates counters and phase durations across all queries
	// answered on this session's substrate, unlike Result.Metrics which
	// isolates one query.
	Lifetime QueryMetrics `json:"lifetime"`
}

// Stats snapshots the session. Safe to call concurrently with queries; a
// closed session still reports its final totals.
func (p *Prepared) Stats() SessionStats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	snap := p.cl.Reg().Snapshot()
	return SessionStats{
		Rows:           p.d.NumRows(),
		Epoch:          p.epoch,
		Fingerprint:    spec.Hex(p.dsSpec.Fingerprint()),
		Backend:        p.backendName(),
		PooledDatasets: p.cl.Pool().Len(),
		PoolLimit:      p.cl.Pool().Limit(),
		Lifetime: QueryMetrics{
			Counters:  snap.Counters,
			Phases:    snap.Phases,
			SimPhases: snap.SimPhases,
		},
	}
}

// checkQuery validates that a query does not try to move the session to a
// different substrate mid-flight.
func (p *Prepared) checkQuery(backend Backend) error {
	if p.closed {
		return fmt.Errorf("sirum: session is closed")
	}
	if backend != "" && backend != p.popt.Backend && !(backend == BackendNative && p.popt.Backend == "") {
		return fmt.Errorf("sirum: session prepared on backend %q; leave Options.Backend unset per query", p.backendName())
	}
	return nil
}

func (p *Prepared) backendName() string {
	if p.popt.Backend == "" {
		return string(BackendNative)
	}
	return string(p.popt.Backend)
}

// Mine runs one query against the prepared state. Options.Cluster and
// Options.Backend are fixed at Prepare time and ignored here (a differing
// Backend is rejected). Safe for concurrent use.
func (p *Prepared) Mine(opt Options) (*Result, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if err := p.checkQuery(opt.Backend); err != nil {
		return nil, err
	}
	mopt, err := opt.minerOptions(p.d.NumRows())
	if err != nil {
		return nil, err
	}
	res, err := p.prep.Mine(mopt)
	if err != nil {
		return nil, err
	}
	return p.d.publicResult(res), nil
}

// Explore recommends informative rules beyond the prior knowledge, as
// Dataset.Explore, but against the prepared state. Safe for concurrent use.
func (p *Prepared) Explore(opt ExploreOptions) (*ExploreResult, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if err := p.checkQuery(opt.Backend); err != nil {
		return nil, err
	}
	rec, err := explore.RunPrepared(p.prep, explore.Options{
		K: opt.K, GroupBys: opt.GroupBys, Optimized: true, MultiRule: true, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return p.d.exploreResult(rec)
}

// AppendResult reports one Append: whether the maintained rule list had to
// be re-mined from scratch or a cheap refit sufficed, and its current state
// on the grown data.
type AppendResult struct {
	// Remined is true when the batch triggered a full mining pass (the rule
	// list had drifted past the staleness threshold, or nothing was mined
	// yet).
	Remined bool
	// Rows is the accumulated dataset size.
	Rows int
	// KL is the divergence of the maintained rule list on the accumulated
	// data.
	KL float64
	// Rules is the maintained rule list with aggregates recomputed on the
	// accumulated data.
	Rules []Rule
}

// Append folds a batch of new tuples into the session: the data grows, the
// prepared state (blocks, transform, sample, index) is invalidated and
// rebuilt, and the maintained rule list is refit — or re-mined with opt when
// it no longer explains the data (see the streaming example). Append blocks
// until in-flight queries finish; queries issued after it see the grown
// data.
func (p *Prepared) Append(batch *Dataset, opt Options) (*AppendResult, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkQuery(opt.Backend); err != nil {
		return nil, err
	}
	old := p.d
	merged, err := old.ds.Concat(batch.ds)
	if err != nil {
		return nil, err
	}
	// The grown dataset keeps the base source identity: what changed is the
	// epoch, which is bumped below once the append commits.
	grown := &Dataset{ds: merged, src: old.src}
	mopt, err := opt.minerOptions(grown.NumRows())
	if err != nil {
		return nil, err
	}

	// Prepare the grown dataset before touching any session state, so a
	// failed preparation (or maintenance pass) leaves the session exactly
	// as it was — retrying the Append cannot double-count the batch.
	prep, err := miner.Prepare(p.cl, grown.ds, p.popt.prepOptions(grown.NumRows()))
	if err != nil {
		return nil, err
	}
	prevOpt := p.inc.Options()
	p.inc.SetOptions(mopt)
	p.inc.Seed(grown.ds)
	p.inc.UsePrep(prep) // a re-mine runs as a query, not a second data load
	incRes, err := p.inc.Maintain()
	if err != nil {
		// Roll back every speculative mutation: the rule list, data and
		// options are exactly as before, so a retried Append cannot
		// double-count the batch or silently run with the failed call's
		// options.
		p.inc.SetOptions(prevOpt)
		p.inc.Seed(old.ds)
		p.inc.UsePrep(nil)
		prep.Drop()
		return nil, err
	}
	p.prep.Drop()
	p.prep = prep
	p.d = grown
	p.epoch++
	p.chain = spec.ExtendChain(p.chain, batch.contentHash())

	out := &AppendResult{Remined: incRes.Remined, Rows: incRes.Rows, KL: incRes.KL}
	for _, mr := range incRes.Rules {
		out.Rules = append(out.Rules, grown.publicRule(mr))
	}
	return out, nil
}

// Close drops the prepared state and tears down the session's execution
// substrate. The session is unusable afterwards.
func (p *Prepared) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	p.prep.Drop()
	return p.cl.Close()
}

// exploreResult translates an internal recommendation, describing the prior
// cells against this dataset.
func (d *Dataset) exploreResult(rec *explore.Recommendation) (*ExploreResult, error) {
	out := &ExploreResult{Result: d.publicResult(rec.Result)}
	for _, pr := range rec.PriorRules {
		avgSum, count := pr.SupportSums(d.ds)
		mr := miner.MinedRule{Rule: pr, Avg: avgSum / float64(count), Count: int64(count)}
		out.Prior = append(out.Prior, d.publicRule(mr))
	}
	return out, nil
}
